# End-to-end crash-safe resume check: a journal written while sweeping a
# subset of workloads seeds a --resume over the full list in a *separate
# process*, and the resumed CSV must be byte-identical to an uninterrupted
# run's. Invoked by the cli_resume_bitwise ctest with -DCLI=<binary>
# -DWORKDIR=<scratch dir>.
set(sweep_args --techniques rpv --instr 30000 --warmup 5000)
file(REMOVE_RECURSE ${WORKDIR})
file(MAKE_DIRECTORY ${WORKDIR})

# 1. Reference: the uninterrupted sweep.
execute_process(COMMAND ${CLI} --sweep gamess,gobmk ${sweep_args}
                        --csv ${WORKDIR}/full.csv
                RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "reference sweep failed (exit ${rc})")
endif()

# 2. "Interrupted" leg: only one workload completes, journaled. This is the
#    state a SIGKILL mid-sweep leaves behind.
execute_process(COMMAND ${CLI} --sweep gamess ${sweep_args}
                        --journal ${WORKDIR}/sweep.journal
                        --csv ${WORKDIR}/partial.csv
                RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "journaled subset sweep failed (exit ${rc})")
endif()

# 3. Resume over the full workload list in a fresh process.
execute_process(COMMAND ${CLI} --sweep gamess,gobmk ${sweep_args}
                        --resume ${WORKDIR}/sweep.journal
                        --csv ${WORKDIR}/resumed.csv
                RESULT_VARIABLE rc
                OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "resumed sweep failed (exit ${rc}): ${out}${err}")
endif()
if(NOT "${out}${err}" MATCHES "resume: 1 row\\(s\\) restored")
  message(FATAL_ERROR "resume did not restore the journaled row: ${out}${err}")
endif()

# 4. The resumed CSV must match the uninterrupted one byte for byte.
execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files
                        ${WORKDIR}/full.csv ${WORKDIR}/resumed.csv
                RESULT_VARIABLE same)
if(NOT same EQUAL 0)
  message(FATAL_ERROR "resumed CSV differs from the uninterrupted sweep's")
endif()
file(REMOVE_RECURSE ${WORKDIR})

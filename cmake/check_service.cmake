# End-to-end chaos drill for the multi-process sweep service: plan a sweep,
# let two chaos-armed workers SIGKILL themselves mid-lease, have two clean
# workers steal the dangling leases and finish, then assert the coordinator's
# CSV is byte-identical to a single-process `esteem_cli --sweep` of the same
# flags. Invoked by the service_chaos_bitwise ctest with -DCLI=<esteem_cli>
# -DWORKERD=<esteem_workerd> -DWORKDIR=<scratch dir>.
set(sweep gamess,gobmk,mcf)
set(sweep_args --techniques rpv,esteem --instr 30000 --warmup 5000)
file(REMOVE_RECURSE ${WORKDIR})
file(MAKE_DIRECTORY ${WORKDIR})

# 0. A config with aggressive lease timing so stolen rows re-lease within
#    the test budget instead of the production 30 s TTL. The single-process
#    reference uses the *same* file — [service] keys are part of the sweep
#    fingerprint, so byte-identity requires identical configs.
execute_process(COMMAND ${CLI} --dump-config
                OUTPUT_VARIABLE ini RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "--dump-config failed (exit ${rc})")
endif()
string(REGEX REPLACE "lease_ttl_ms = [0-9]+" "lease_ttl_ms = 1500" ini "${ini}")
string(REGEX REPLACE "heartbeat_ms = [0-9]+" "heartbeat_ms = 300" ini "${ini}")
string(REGEX REPLACE "poll_ms = [0-9]+" "poll_ms = 100" ini "${ini}")
# Observability ON for the whole drill: workers flush sidecar snapshots while
# crashing mid-lease, and step 6's byte-identity then pins the
# zero-observer-effect guarantee ([observability] is excluded from the sweep
# fingerprint, so the same config file still plans the same sweep).
string(REGEX REPLACE "flush_ms = [0-9]+" "flush_ms = 200" ini "${ini}")
file(WRITE ${WORKDIR}/service.ini "${ini}")

# 1. Reference: the uninterrupted single-process sweep.
execute_process(COMMAND ${CLI} --sweep ${sweep} ${sweep_args}
                        --config ${WORKDIR}/service.ini
                        --csv ${WORKDIR}/full.csv
                RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "reference sweep failed (exit ${rc})")
endif()

# 2. Plan the same sweep into a service directory.
execute_process(COMMAND ${WORKERD} --plan ${WORKDIR}/svc --sweep ${sweep}
                        ${sweep_args} --config ${WORKDIR}/service.ini
                RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "plan failed (exit ${rc}): ${out}${err}")
endif()

# 3. Two chaos-armed workers: each completes one row, claims the next, and
#    SIGKILLs itself holding the lease. A crash is the *expected* outcome —
#    a clean exit means the chaos hook failed to arm.
foreach(i RANGE 1 2)
  execute_process(COMMAND ${CMAKE_COMMAND} -E env ESTEEM_CHAOS=1
                          ESTEEM_CRASH_AFTER_ROWS=1
                          ${WORKERD} --worker ${WORKDIR}/svc --owner chaos-${i}
                  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
  if(rc EQUAL 0)
    message(FATAL_ERROR "chaos worker ${i} exited cleanly; expected SIGKILL")
  endif()
endforeach()

# 4. Two clean workers. The first steals the dead workers' expired leases
#    and resolves every remaining row; the second finds nothing to do. Both
#    must exit 0.
foreach(i RANGE 1 2)
  execute_process(COMMAND ${WORKERD} --worker ${WORKDIR}/svc --owner clean-${i}
                  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "clean worker ${i} failed (exit ${rc}): ${out}${err}")
  endif()
endforeach()

# 5. Aggregate. The journal now holds crash debris (dangling leases, stolen
#    generations); the coordinator must still see a fully-resolved table.
execute_process(COMMAND ${WORKERD} --coordinator ${WORKDIR}/svc
                        --csv ${WORKDIR}/service.csv --timeout-ms 60000
                RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "coordinator failed (exit ${rc}): ${out}${err}")
endif()

# 6. Crash-recovered CSV must match the uninterrupted one byte for byte.
execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files
                        ${WORKDIR}/full.csv ${WORKDIR}/service.csv
                RESULT_VARIABLE same)
if(NOT same EQUAL 0)
  message(FATAL_ERROR "service CSV differs from the single-process sweep's")
endif()

# 7. The fleet view over the same journal: --status --json must report the
#    sweep resolved and name the chaos casualties; the merged OpenMetrics
#    must pass the strict checker; the merged trace must be writable.
execute_process(COMMAND ${WORKERD} --status ${WORKDIR}/svc --json
                RESULT_VARIABLE rc OUTPUT_VARIABLE status ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "--status --json failed (exit ${rc}): ${err}")
endif()
foreach(needle "\"v\":1" "\"completed\":6" "\"eta_ms\":0" "\"owner\":\"chaos-1\"")
  string(FIND "${status}" "${needle}" at)
  if(at EQUAL -1)
    message(FATAL_ERROR "--status --json missing ${needle}: ${status}")
  endif()
endforeach()
execute_process(COMMAND ${WORKERD} --status ${WORKDIR}/svc
                        --metrics ${WORKDIR}/metrics.om
                RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "--status --metrics failed (exit ${rc}): ${out}${err}")
endif()
execute_process(COMMAND ${WORKERD} --check-metrics ${WORKDIR}/metrics.om
                RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "OpenMetrics checker rejected the merged exposition "
                      "(exit ${rc}): ${out}${err}")
endif()
execute_process(COMMAND ${WORKERD} --merge-trace ${WORKDIR}/svc
                        --out ${WORKDIR}/trace.merged.json
                RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "--merge-trace failed (exit ${rc}): ${out}${err}")
endif()
file(SIZE ${WORKDIR}/trace.merged.json trace_bytes)
if(trace_bytes LESS 100)
  message(FATAL_ERROR "merged trace suspiciously small (${trace_bytes} bytes)")
endif()
file(REMOVE_RECURSE ${WORKDIR})

// Sweep-spec construction shared by esteem_cli and esteem_workerd.
//
// The multi-process service promises byte-identical output to a
// single-process `esteem_cli --sweep` of the same flags, which only holds if
// both tools derive the *same* SweepSpec — same workload parsing, same
// paper-default config policy (core count, interval scaling, hysteresis; see
// DESIGN.md §5). This header is that single definition.
#pragma once

#include <algorithm>
#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "common/config.hpp"
#include "sim/runner.hpp"
#include "sim/technique.hpp"
#include "trace/workloads.hpp"

namespace esteem::tools {

inline std::vector<std::string> split_csv(const std::string& s) {
  std::vector<std::string> out;
  std::istringstream is(s);
  std::string item;
  while (std::getline(is, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

/// Splits per-core benchmark names joined by '+' into one workload.
inline trace::Workload parse_sweep_workload(const std::string& item) {
  trace::Workload wl;
  wl.name = item;
  std::istringstream is(item);
  std::string bench;
  while (std::getline(is, bench, '+')) {
    if (!bench.empty()) wl.benchmarks.push_back(bench);
  }
  return wl;
}

/// Paper defaults for the core count of the sweep's first workload, with the
/// 10M-cycle interval scaled to the shortened run (the same policy the bench
/// harness uses; a mismatched workload later fails as a recorded sweep
/// error).
inline SystemConfig default_sweep_config(const trace::Workload& first, instr_t instr) {
  SystemConfig cfg = first.benchmarks.size() >= 2 ? SystemConfig::dual_core()
                                                  : SystemConfig::single_core();
  cfg.ncores =
      static_cast<std::uint32_t>(std::max<std::size_t>(1, first.benchmarks.size()));
  cfg.esteem.interval_cycles = std::max<cycle_t>(
      cfg.retention_cycles(),
      static_cast<cycle_t>(10e6 * 4.0 * static_cast<double>(instr) / 400e6));
  cfg.esteem.hysteresis_intervals = 2;
  cfg.esteem.shrink_confirm_intervals = 2;
  return cfg;
}

/// CLI args -> SweepSpec (workloads from --sweep, techniques from
/// --techniques or the spec default). Throws std::invalid_argument on an
/// unknown technique name; leaves workloads empty when `sweep_arg` is.
inline sim::SweepSpec build_sweep_spec(const SystemConfig& cfg, const std::string& sweep_arg,
                                       const std::string& techniques_arg, instr_t instr,
                                       instr_t warmup, std::uint64_t seed, unsigned jobs) {
  sim::SweepSpec spec;
  spec.config = cfg;
  spec.seed = seed;
  spec.instr_per_core = instr;
  spec.warmup_instr_per_core = warmup;
  spec.threads = jobs;
  for (const std::string& item : split_csv(sweep_arg)) {
    spec.workloads.push_back(parse_sweep_workload(item));
  }
  if (!techniques_arg.empty()) {
    spec.techniques.clear();
    for (const std::string& name : split_csv(techniques_arg)) {
      spec.techniques.push_back(sim::parse_technique(name));
    }
  }
  return spec;
}

}  // namespace esteem::tools

// esteem_workerd — multi-process sweep service driver (DESIGN.md §12).
//
// One sweep, N cooperating processes sharing a service directory:
//
//   esteem_workerd --plan DIR --sweep WL[,WL] [--techniques A[,B]]
//                  [--config FILE] [--instr N] [--warmup N] [--seed N]
//       writes DIR/service.journal with the sweep header (the implicit
//       (workload x technique) row manifest); idempotent for the same sweep
//
//   esteem_workerd --worker DIR [--owner NAME] [--quiet]
//       lease -> run -> journal loop until every row is resolved; heartbeats
//       keep the in-flight lease alive, crashes leave a lease that expires
//       and is re-leased by a surviving worker
//
//   esteem_workerd --coordinator DIR [--sweep ... to plan inline]
//                  [--csv FILE] [--metrics FILE] [--timeout-ms N] [--quiet]
//       waits for workers, aggregates the journal, prints the sweep report
//       and writes the CSV — byte-identical to a single-process
//       `esteem_cli --sweep` of the same flags; --metrics additionally
//       writes the merged OpenMetrics exposition after the collect
//
//   esteem_workerd --status DIR [--json] [--metrics FILE]
//       one-shot fleet view: the lease table plus live per-worker health
//       (heartbeat age, rows done/stolen/failed, memo hit rate) and a sweep
//       ETA from observed row durations; --json prints the versioned
//       machine-readable form (the same fleet view the coordinator's
//       progress line renders), --metrics writes the merged OpenMetrics
//       exposition of every worker's latest snapshot
//
//   esteem_workerd --merge-trace DIR [--out FILE]
//       stitches the service journal + per-worker telemetry sidecars into
//       one Perfetto-loadable Chrome trace (coordinator pid 0, one pid per
//       worker); default output DIR/trace.merged.json
//
//   esteem_workerd --check-metrics FILE
//       strict OpenMetrics validation of FILE (used by tests/CI)
//
// Exit codes: 0 ok | 2 usage/open failure | 3 at least one workload errored
// | 5 interrupted (SIGINT/SIGTERM) | 6 integrity conflict (differing cell
// digests) | 7 --timeout-ms elapsed unresolved.
//
// Chaos drills: setting ESTEEM_CHAOS arms [service] crash_after_rows (and
// ESTEEM_CRASH_AFTER_ROWS overrides it per process); an armed worker
// self-SIGKILLs mid-lease after completing that many rows.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "chaos/fault_plan.hpp"
#include "common/config_io.hpp"
#include "resilience/shutdown.hpp"
#include "service/coordinator.hpp"
#include "service/observer.hpp"
#include "service/worker.hpp"
#include "sweep_cli_common.hpp"
#include "telemetry/export.hpp"

namespace {

using namespace esteem;

[[noreturn]] void usage(const char* msg = nullptr) {
  if (msg != nullptr) std::fprintf(stderr, "error: %s\n", msg);
  std::fprintf(stderr,
               "usage: esteem_workerd --plan DIR --sweep WL[,WL] [--techniques A[,B]]\n"
               "                      [--config FILE] [--instr N] [--warmup N] [--seed N]\n"
               "       esteem_workerd --worker DIR [--owner NAME] [--quiet]\n"
               "       esteem_workerd --coordinator DIR [--sweep ...] [--csv FILE]\n"
               "                      [--metrics FILE] [--timeout-ms N] [--quiet]\n"
               "       esteem_workerd --status DIR [--json] [--metrics FILE]\n"
               "       esteem_workerd --merge-trace DIR [--out FILE]\n"
               "       esteem_workerd --check-metrics FILE\n");
  std::exit(2);
}

int run_status(const std::string& dir, bool json, const std::string& metrics_path) {
  service::LeaseTable table;
  if (!table.open(dir, "status")) {
    std::fprintf(stderr, "error: %s\n", table.last_error().c_str());
    return 2;
  }
  const service::TableState st = table.load_state();
  if (!st.ok) {
    std::fprintf(stderr, "error: %s\n", st.error.c_str());
    return 2;
  }
  const std::int64_t now = service::LeaseTable::wall_ms();
  const service::FleetStatus fs = service::collect_fleet_status(table, st, now);

  if (!metrics_path.empty()) {
    std::string merr;
    if (!service::write_fleet_metrics(dir, metrics_path, merr)) {
      std::fprintf(stderr, "warning: metrics not written: %s\n", merr.c_str());
    } else if (!json) {
      std::fprintf(stderr, "metrics written to %s\n", metrics_path.c_str());
    }
  }

  if (json) {
    std::printf("%s\n", service::status_json(fs).c_str());
    return st.conflict ? service::kExitIntegrity : 0;
  }

  std::printf("sweep %016llx: %zu row(s) = %zu workload(s) x %zu technique(s)\n",
              static_cast<unsigned long long>(table.sweep_hash()), st.rows.size(),
              table.spec().workloads.size(), table.n_techniques());
  for (std::size_t i = 0; i < st.rows.size(); ++i) {
    const service::RowState& r = st.rows[i];
    const char* status = r.done      ? "done"
                         : r.failed  ? "failed"
                         : r.leased(now) ? "leased"
                         : r.lease_id != 0 ? "expired"
                                           : "pending";
    std::printf("  row %-4zu %-16s %-14s %-8s gen %llu%s%s\n", i,
                table.row_workload(i).name.c_str(),
                std::string(to_string(table.row_technique(i))).c_str(), status,
                static_cast<unsigned long long>(r.generation),
                r.owner.empty() ? "" : " ", r.owner.c_str());
  }
  if (!fs.workers.empty()) {
    std::printf("workers:\n");
    for (const service::WorkerHealth& h : fs.workers) {
      char age[32];
      if (h.heartbeat_age_ms < 0) std::snprintf(age, sizeof age, "never");
      else std::snprintf(age, sizeof age, "%.1fs", static_cast<double>(h.heartbeat_age_ms) / 1000.0);
      char memo[32];
      if (h.memo_hit_rate < 0) std::snprintf(memo, sizeof memo, "-");
      else std::snprintf(memo, sizeof memo, "%.1f%%", h.memo_hit_rate * 100.0);
      std::printf("  %-20s %-5s hb age %-8s done %-3zu failed %-3zu stolen %-3zu "
                  "memo %-7s events %zu\n",
                  h.owner.c_str(), h.alive ? "alive" : "dead", age, h.rows_done,
                  h.rows_failed, h.rows_stolen, memo, h.events);
    }
  }
  std::printf("%s\n", service::progress_line(fs).c_str());
  return st.conflict ? service::kExitIntegrity : 0;
}

int run_check_metrics(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) {
    std::fprintf(stderr, "error: cannot read %s\n", path.c_str());
    return 2;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  std::string error;
  if (!telemetry::check_openmetrics(buf.str(), error)) {
    std::fprintf(stderr, "error: %s: %s\n", path.c_str(), error.c_str());
    return 2;
  }
  std::printf("%s: valid OpenMetrics exposition\n", path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  chaos::install_from_env();
  std::string mode;
  std::string dir;
  std::string sweep_arg;
  std::string techniques_arg;
  std::string config_path;
  std::string csv_path;
  std::string owner;
  std::string metrics_path;
  std::string trace_out;
  instr_t instr = 4'000'000;
  instr_t warmup = 800'000;
  std::uint64_t seed = 42;
  std::uint32_t timeout_ms = 0;
  bool quiet = false;
  bool json = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) usage(("missing value for " + arg).c_str());
      return argv[++i];
    };
    auto mode_flag = [&](const char* name) {
      if (!mode.empty()) {
        usage("pick exactly one of --plan/--worker/--coordinator/--status/"
              "--merge-trace/--check-metrics");
      }
      mode = name;
      dir = value();
    };
    if (arg == "--plan") mode_flag("plan");
    else if (arg == "--worker") mode_flag("worker");
    else if (arg == "--coordinator") mode_flag("coordinator");
    else if (arg == "--status") mode_flag("status");
    else if (arg == "--merge-trace") mode_flag("merge-trace");
    else if (arg == "--check-metrics") mode_flag("check-metrics");
    else if (arg == "--sweep") sweep_arg = value();
    else if (arg == "--techniques") techniques_arg = value();
    else if (arg == "--config") config_path = value();
    else if (arg == "--csv") csv_path = value();
    else if (arg == "--metrics") metrics_path = value();
    else if (arg == "--out") trace_out = value();
    else if (arg == "--json") json = true;
    else if (arg == "--owner") owner = value();
    else if (arg == "--instr") instr = std::strtoull(value().c_str(), nullptr, 10);
    else if (arg == "--warmup") warmup = std::strtoull(value().c_str(), nullptr, 10);
    else if (arg == "--seed") seed = std::strtoull(value().c_str(), nullptr, 10);
    else if (arg == "--timeout-ms")
      timeout_ms = static_cast<std::uint32_t>(std::strtoul(value().c_str(), nullptr, 10));
    else if (arg == "--quiet") quiet = true;
    else if (arg == "--help" || arg == "-h") usage();
    else usage(("unknown option " + arg).c_str());
  }
  if (mode.empty()) {
    usage("pick one of --plan/--worker/--coordinator/--status/--merge-trace/"
          "--check-metrics");
  }

  try {
    if (mode == "status") return run_status(dir, json, metrics_path);
    if (mode == "check-metrics") return run_check_metrics(dir);
    if (mode == "merge-trace") {
      const std::string out = trace_out.empty()
                                  ? (std::filesystem::path(dir) / "trace.merged.json").string()
                                  : trace_out;
      std::string error;
      if (!service::write_merged_trace(dir, out, error)) {
        std::fprintf(stderr, "error: %s\n", error.c_str());
        return 2;
      }
      std::printf("merged trace written to %s\n", out.c_str());
      return 0;
    }

    if (mode == "plan" || (mode == "coordinator" && !sweep_arg.empty())) {
      if (sweep_arg.empty()) usage("--plan requires --sweep");
      const auto items = tools::split_csv(sweep_arg);
      if (items.empty()) usage("empty sweep workload list");
      const SystemConfig cfg =
          config_path.empty()
              ? tools::default_sweep_config(tools::parse_sweep_workload(items.front()), instr)
              : load_config_file(config_path);
      const sim::SweepSpec spec =
          tools::build_sweep_spec(cfg, sweep_arg, techniques_arg, instr, warmup, seed, 1);
      std::string error;
      if (!service::plan_service(dir, spec, error)) {
        std::fprintf(stderr, "error: %s\n", error.c_str());
        return 2;
      }
      std::printf("planned %zu row(s) (%zu workload(s) x %zu technique(s)) in %s\n",
                  spec.workloads.size() * spec.techniques.size(), spec.workloads.size(),
                  spec.techniques.size(), dir.c_str());
      if (mode == "plan") return 0;
    }

    resilience::install_signal_handlers();

    if (mode == "worker") {
      service::WorkerOptions opts;
      opts.dir = dir;
      opts.owner = owner;
      opts.quiet = quiet;
      const service::WorkerReport rep = service::run_worker(opts);
      if (!quiet || !rep.ok()) {
        std::fprintf(stderr, "[%s] done: %zu completed, %zu failed, %zu stolen, %zu fenced%s%s%s\n",
                     (opts.owner.empty() ? service::default_owner() : opts.owner).c_str(),
                     rep.rows_completed, rep.rows_failed, rep.rows_stolen, rep.fenced,
                     rep.interrupted ? ", interrupted" : "",
                     rep.ok() ? "" : ", error: ", rep.error.c_str());
      }
      if (!rep.ok()) {
        return rep.error.find("integrity conflict") != std::string::npos
                   ? service::kExitIntegrity
                   : 2;
      }
      return rep.interrupted ? resilience::kExitInterrupted : 0;
    }

    // coordinator
    service::CoordinatorOptions opts;
    opts.dir = dir;
    opts.csv_path = csv_path;
    opts.metrics_path = metrics_path;
    opts.timeout_ms = timeout_ms;
    opts.quiet = quiet;
    const service::CollectResult collected = service::wait_and_collect(opts);
    return service::report_collect(collected, opts);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}

// esteem_validate: the paper-fidelity gate.
//
//   esteem_validate --check                 score the figure matrix against
//                                           validation/golden.json (exit 1
//                                           on drift or shape failure)
//   esteem_validate --update-golden         re-record the golden entry for
//                                           the current scale (prints the
//                                           diff it is about to commit)
//   esteem_validate --results               render the results book
//                                           (RESULTS.md) to stdout
//   esteem_validate --list                  show the figure matrix
//
// Options:
//   --golden PATH       golden file (default validation/golden.json)
//   --scale smoke|bench|paper
//                       pinned 300k-instr smoke scale (default), the
//                       env-driven bench scale (ESTEEM_INSTR etc.), or the
//                       paper's 400M-instr scale made tractable by SMARTS
//                       sampling (docs/SAMPLING.md)
//   --instr N --warmup N --seed N   override the chosen scale
//   --jobs N            sweep worker threads (0 = hardware concurrency)
//   --figures a,b,...   run a subset (default fig3,fig4,fig5,fig6)
//   --perturb-refresh-energy X      scale eDRAM refresh energy by X before
//                       running — a deliberate-drift hook for testing that
//                       the gate actually fails when the model moves
//   --journal-dir DIR   crash-safe journaling: each figure appends its
//                       completed rows to DIR/<figid>.journal as it runs
//   --resume            restore rows from existing journals in
//                       --journal-dir before running (incompatible journals
//                       are ignored with a warning)
//
// SIGINT/SIGTERM drain the figure matrix gracefully: completed rows stay
// journaled and the process exits with code 5 instead of scoring partial
// data.
//
// Paper-shape checks (signs, §7.2 bands) are gated at the bench and paper
// scales: at tiny instruction budgets the reconfiguration machinery barely
// engages and the paper's ordering inverts (see EXPERIMENTS.md).
// Drift-vs-golden is gated at every scale.
//
// Exit codes: 0 pass, 1 check failed, 2 usage error, 4 runtime error,
// 5 interrupted.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <functional>
#include <string>
#include <vector>

#include "resilience/shutdown.hpp"
#include "validation/figures.hpp"
#include "validation/golden.hpp"
#include "validation/results_book.hpp"
#include "validation/scorecard.hpp"

namespace {

using namespace esteem;
using namespace esteem::validation;

enum class Mode { Check, UpdateGolden, Results, List };

struct Options {
  Mode mode = Mode::Check;
  std::string golden_path = "validation/golden.json";
  std::string scale_name = "smoke";
  std::vector<std::string> figure_ids{"fig3", "fig4", "fig5", "fig6"};
  double perturb_refresh = 1.0;
  std::string journal_dir;
  bool resume = false;
  // Scale overrides (<0 = keep the scale's own value).
  long long instr = -1;
  long long warmup = -1;
  long long seed = -1;
  long long jobs = -1;
};

void usage(std::FILE* to) {
  std::fprintf(to,
               "usage: esteem_validate [--check|--update-golden|--results|--list]\n"
               "                       [--golden PATH] [--scale smoke|bench|paper]\n"
               "                       [--instr N] [--warmup N] [--seed N] [--jobs N]\n"
               "                       [--figures fig3,fig4,...]\n"
               "                       [--perturb-refresh-energy X]\n"
               "                       [--journal-dir DIR] [--resume]\n");
}

std::vector<std::string> split_csv(const std::string& s) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= s.size()) {
    const std::size_t comma = s.find(',', start);
    const std::string tok = s.substr(start, comma - start);
    if (!tok.empty()) out.push_back(tok);
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

bool parse_args(int argc, char** argv, Options& opt) {
  auto need_value = [&](int i) {
    if (i + 1 >= argc) {
      std::fprintf(stderr, "%s needs a value\n", argv[i]);
      return false;
    }
    return true;
  };
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--check") {
      opt.mode = Mode::Check;
    } else if (a == "--update-golden") {
      opt.mode = Mode::UpdateGolden;
    } else if (a == "--results") {
      opt.mode = Mode::Results;
    } else if (a == "--list") {
      opt.mode = Mode::List;
    } else if (a == "--golden") {
      if (!need_value(i)) return false;
      opt.golden_path = argv[++i];
    } else if (a == "--scale") {
      if (!need_value(i)) return false;
      opt.scale_name = argv[++i];
      if (opt.scale_name != "smoke" && opt.scale_name != "bench" &&
          opt.scale_name != "paper") {
        std::fprintf(stderr, "--scale must be 'smoke', 'bench' or 'paper'\n");
        return false;
      }
    } else if (a == "--figures") {
      if (!need_value(i)) return false;
      opt.figure_ids = split_csv(argv[++i]);
      for (const std::string& id : opt.figure_ids) {
        if (find_figure(id) == nullptr) {
          std::fprintf(stderr, "unknown figure id '%s'\n", id.c_str());
          return false;
        }
      }
    } else if (a == "--journal-dir") {
      if (!need_value(i)) return false;
      opt.journal_dir = argv[++i];
    } else if (a == "--resume") {
      opt.resume = true;
    } else if (a == "--perturb-refresh-energy") {
      if (!need_value(i)) return false;
      opt.perturb_refresh = std::atof(argv[++i]);
      if (opt.perturb_refresh <= 0.0) {
        std::fprintf(stderr, "--perturb-refresh-energy must be > 0\n");
        return false;
      }
    } else if (a == "--instr" || a == "--warmup" || a == "--seed" || a == "--jobs") {
      if (!need_value(i)) return false;
      const long long v = std::atoll(argv[++i]);
      if (v < 0 || (v == 0 && a != "--jobs" && a != "--seed")) {
        std::fprintf(stderr, "%s must be positive\n", a.c_str());
        return false;
      }
      if (a == "--instr") opt.instr = v;
      if (a == "--warmup") opt.warmup = v;
      if (a == "--seed") opt.seed = v;
      if (a == "--jobs") opt.jobs = v;
    } else if (a == "--help" || a == "-h") {
      usage(stdout);
      std::exit(0);
    } else {
      std::fprintf(stderr, "unknown option '%s'\n", a.c_str());
      return false;
    }
  }
  return true;
}

ScaleSpec resolve_scale(const Options& opt) {
  ScaleSpec s = opt.scale_name == "bench"   ? bench_scale()
                : opt.scale_name == "paper" ? paper_scale()
                                            : smoke_scale();
  if (opt.instr >= 0) {
    s.instr_per_core = static_cast<instr_t>(opt.instr);
    if (opt.warmup < 0) s.warmup_per_core = s.instr_per_core / 5;
  }
  if (opt.warmup >= 0) s.warmup_per_core = static_cast<instr_t>(opt.warmup);
  if (opt.seed >= 0) s.seed = static_cast<std::uint64_t>(opt.seed);
  if (opt.jobs >= 0) s.threads = static_cast<unsigned>(opt.jobs);
  return s;
}

/// Runs the figure matrix; `interrupted` reports whether a shutdown request
/// cut it short (remaining figures are skipped entirely).
std::vector<FigureResult> run_matrix(const Options& opt, const ScaleSpec& scale,
                                     bool& interrupted) {
  std::function<void(SystemConfig&)> mutate;
  if (opt.perturb_refresh != 1.0) {
    const double k = opt.perturb_refresh;
    mutate = [k](SystemConfig& cfg) { cfg.energy.refresh_scale = k; };
  }
  FigureRunOptions run_opts;
  run_opts.journal_dir = opt.journal_dir;
  run_opts.resume = opt.resume;
  std::vector<FigureResult> results;
  interrupted = false;
  for (const std::string& id : opt.figure_ids) {
    if (resilience::shutdown_requested()) {
      interrupted = true;
      break;
    }
    const FigureSpec* spec = find_figure(id);
    std::fprintf(stderr, "running %s at scale '%s' (%llu instr/core)...\n",
                 id.c_str(), scale.label.c_str(),
                 static_cast<unsigned long long>(scale.instr_per_core));
    results.push_back(run_figure(*spec, scale, mutate, run_opts));
    interrupted |= results.back().sweep.interrupted;
  }
  return results;
}

int do_check(const Options& opt, const ScaleSpec& scale) {
  GoldenFile golden;
  bool have_golden = false;
  try {
    golden = load_golden(opt.golden_path);
    have_golden = true;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "warning: %s\n", e.what());
  }

  bool interrupted = false;
  const std::vector<FigureResult> results = run_matrix(opt, scale, interrupted);
  if (interrupted) {
    std::fprintf(stderr, "validation interrupted; not scoring partial data "
                         "(re-run with --resume to continue)\n");
    return resilience::kExitInterrupted;
  }
  const bool paper_checks = scale.label == "bench" || scale.label == "paper";
  const Scorecard card = build_scorecard(results, have_golden ? &golden : nullptr,
                                         paper_checks);
  std::fputs(scorecard_text(card).c_str(), stdout);
  if (!card.pass()) {
    std::fprintf(stdout,
                 "\nDrift detected (or golden missing). If the change is "
                 "intentional, re-record with:\n  esteem_validate "
                 "--update-golden --scale %s --golden %s\n",
                 opt.scale_name.c_str(), opt.golden_path.c_str());
    return 1;
  }
  return 0;
}

int do_update_golden(const Options& opt, const ScaleSpec& scale) {
  if (opt.perturb_refresh != 1.0) {
    std::fprintf(stderr, "refusing to record a golden from a perturbed run\n");
    return 2;
  }
  bool interrupted = false;
  const std::vector<FigureResult> results = run_matrix(opt, scale, interrupted);
  if (interrupted) {
    std::fprintf(stderr, "validation interrupted; not recording a golden\n");
    return resilience::kExitInterrupted;
  }
  for (const FigureResult& r : results) {
    if (!r.sweep.ok()) {
      std::fprintf(stderr, "%s had sweep errors; not recording a golden\n",
                   r.spec->id.c_str());
      return 4;
    }
  }

  GoldenFile golden;
  try {
    golden = load_golden(opt.golden_path);
  } catch (const std::exception&) {
    std::fprintf(stderr, "starting a fresh golden file at %s\n",
                 opt.golden_path.c_str());
  }
  golden.generator = "esteem_validate --update-golden (scale " +
                     scale_fingerprint(scale) + ")";

  GoldenScale fresh = to_golden(results);
  const GoldenScale* old = golden.find_scale(fresh.fingerprint);
  if (old != nullptr) {
    const std::string diff = golden_diff_text(*old, fresh);
    if (diff.empty()) {
      std::printf("golden entry for %s unchanged\n", fresh.fingerprint.c_str());
    } else {
      std::printf("updating golden entry for %s:\n%s", fresh.fingerprint.c_str(),
                  diff.c_str());
    }
  } else {
    std::printf("recording new golden entry for %s (%zu figures)\n",
                fresh.fingerprint.c_str(), fresh.figures.size());
  }
  golden.upsert_scale(std::move(fresh));
  save_golden(opt.golden_path, golden);
  std::printf("wrote %s\n", opt.golden_path.c_str());
  return 0;
}

int do_results(const Options& opt, const ScaleSpec& scale) {
  GoldenFile golden;
  bool have_golden = false;
  try {
    golden = load_golden(opt.golden_path);
    have_golden = true;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "warning: %s\n", e.what());
  }
  bool interrupted = false;
  const std::vector<FigureResult> results = run_matrix(opt, scale, interrupted);
  if (interrupted) {
    std::fprintf(stderr, "validation interrupted; not rendering partial "
                         "results\n");
    return resilience::kExitInterrupted;
  }
  const Scorecard card = build_scorecard(
      results, have_golden ? &golden : nullptr,
      scale.label == "bench" || scale.label == "paper");
  const ExactChecks checks = run_exact_checks(scale);
  std::fputs(results_book_markdown(results, card, checks).c_str(), stdout);
  return 0;
}

int do_list() {
  for (const FigureSpec& f : figure_matrix()) {
    std::printf("%-5s %s\n      %s\n", f.id.c_str(), f.title.c_str(),
                f.claim.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (!parse_args(argc, argv, opt)) {
    usage(stderr);
    return 2;
  }
  try {
    if (opt.mode == Mode::List) return do_list();
    esteem::resilience::install_signal_handlers();
    const ScaleSpec scale = resolve_scale(opt);
    switch (opt.mode) {
      case Mode::Check: return do_check(opt, scale);
      case Mode::UpdateGolden: return do_update_golden(opt, scale);
      case Mode::Results: return do_results(opt, scale);
      case Mode::List: break;
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "esteem_validate: %s\n", e.what());
    return 4;
  }
  return 0;
}

// esteem_cli — command-line driver for the simulator.
//
//   esteem_cli [options]
//     --workload NAME[,NAME]   benchmark per core (Table 1 name/acronym, or
//                              trace:<file> to replay a recorded trace)
//     --technique NAME         baseline | periodic-valid | rpv | rpd |
//                              smart-refresh | ecc-extended | esteem
//     --sweep WL[,WL]          sweep mode: evaluate every technique of
//                              --techniques over these workloads (use '+'
//                              to separate per-core benchmarks within one
//                              workload, e.g. gobmk+namd). A workload that
//                              fails is reported at the end instead of
//                              aborting the sweep; exit code 3 signals that
//                              at least one workload errored. SIGINT/SIGTERM
//                              drain the sweep gracefully (completed rows
//                              are kept and journaled, queued work is
//                              skipped) and exit with code 5.
//     --serve DIR              sweep-as-a-service: plan the --sweep into DIR
//                              and wait for `esteem_workerd --worker DIR`
//                              processes to resolve the rows instead of
//                              running them here; the report/CSV are
//                              byte-identical to the in-process sweep. Exit
//                              codes add 6 (integrity conflict) to the sweep
//                              protocol.
//     --journal FILE           crash-safe sweep journal: append every
//                              completed workload row (fsync'd, CRC'd
//                              JSONL) as it finishes
//     --resume FILE            restore completed rows from FILE instead of
//                              re-running them, then keep journaling to the
//                              same file; refuses a journal recorded by a
//                              different sweep (config/techniques/seed)
//     --techniques A[,B]       techniques compared in sweep mode
//                              (default: esteem,rpv)
//     --jobs N                 sweep worker threads (0 = hardware
//                              concurrency, the default); the run header
//                              prints the resolved parallelism
//     --csv FILE.csv           write the sweep result table to CSV
//     --config FILE            INI system configuration (see --dump-config)
//     --instr N                measured instructions per core
//     --warmup N               warm-up instructions per core
//     --seed N                 workload generator seed
//     --compare                also run the baseline and print the paper's
//                              comparison metrics (energy saving, WS, ...)
//     --timeline FILE.csv      dump the per-interval reconfiguration timeline
//     --telemetry-dir DIR      telemetry output directory: per-run interval
//                              JSONL series plus a counters.json registry
//                              dump land here
//     --trace FILE.json        emit a Chrome trace_event timeline (open in
//                              chrome://tracing or Perfetto): simulated-time
//                              reconfiguration/refresh/fault lanes plus
//                              wall-clock task-pool and memo-cache rows
//     --interval-stats         record the per-interval counter time-series
//                              (written as <label>.intervals.jsonl)
//     --dump-config            print the effective configuration and exit
//     --dump-config-doc        print the Markdown config-key reference
//                              generated from the INI schema (docs/CONFIG.md)
//                              and exit
//     --list-workloads         print all Table 1 benchmark names and exit
//
// Telemetry is off by default and observer-free: with none of the three
// flags given, output (including sweep CSV) is byte-identical to a build
// without the subsystem.
#include <cstdio>
#include <cstring>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "chaos/fault_plan.hpp"
#include "common/config_io.hpp"
#include "common/csv.hpp"
#include "common/table.hpp"
#include "resilience/shutdown.hpp"
#include "service/coordinator.hpp"
#include "sim/experiment.hpp"
#include "sim/report.hpp"
#include "sim/run_cache.hpp"
#include "sim/runner.hpp"
#include "sim/sweep_journal.hpp"
#include "sim/task_pool.hpp"
#include "sweep_cli_common.hpp"
#include "telemetry/telemetry.hpp"
#include "trace/spec_profiles.hpp"

namespace {

using namespace esteem;
using esteem::tools::parse_sweep_workload;
using esteem::tools::split_csv;

[[noreturn]] void usage(const char* msg = nullptr) {
  if (msg != nullptr) std::fprintf(stderr, "error: %s\n", msg);
  std::fprintf(stderr,
               "usage: esteem_cli [--workload A[,B]] [--technique NAME]\n"
               "                  [--sweep WL[,WL]] [--techniques A[,B]]\n"
               "                  [--serve DIR] [--journal FILE] [--resume FILE]\n"
               "                  [--jobs N] [--csv FILE] [--config FILE]\n"
               "                  [--instr N] [--warmup N] [--seed N]\n"
               "                  [--compare] [--timeline FILE]\n"
               "                  [--telemetry-dir DIR] [--trace FILE]\n"
               "                  [--interval-stats]\n"
               "                  [--dump-config] [--dump-config-doc]\n"
               "                  [--list-workloads]\n");
  std::exit(2);
}

void print_run(const sim::RunOutcome& out, bool faults_enabled) {
  TextTable t;
  t.set_header({"metric", "value"});
  for (std::size_t c = 0; c < out.raw.ipc.size(); ++c) {
    t.add_row({"IPC core " + std::to_string(c), fmt(out.raw.ipc[c], 3)});
  }
  t.add_row({"wall cycles", std::to_string(out.raw.wall_cycles)});
  t.add_row({"L2 demand misses", std::to_string(out.raw.demand_misses)});
  t.add_row({"line refreshes", std::to_string(out.raw.refreshes)});
  t.add_row({"active ratio %", fmt(100.0 * out.raw.avg_active_ratio, 1)});
  t.add_row({"E leak L2 (mJ)", fmt(out.energy.leak_l2_j * 1e3, 4)});
  t.add_row({"E dyn L2 (mJ)", fmt(out.energy.dyn_l2_j * 1e3, 4)});
  t.add_row({"E refresh L2 (mJ)", fmt(out.energy.refresh_l2_j * 1e3, 4)});
  if (faults_enabled) {
    t.add_row({"E ecc-correct (mJ)", fmt(out.energy.ecc_l2_j * 1e3, 4)});
  }
  t.add_row({"E memory (mJ)", fmt(out.energy.mm_j * 1e3, 4)});
  t.add_row({"E algorithm (mJ)", fmt(out.energy.algo_j * 1e6, 4) + " uJ"});
  t.add_row({"E total (mJ)", fmt(out.energy.total_j() * 1e3, 4)});
  if (faults_enabled) {
    const auto& f = out.raw.faults;
    t.add_row({"fault epochs scanned", std::to_string(f.scans)});
    t.add_row({"ECC-corrected lines", std::to_string(f.corrected_lines)});
    t.add_row({"ECC-corrected reads", std::to_string(f.corrected_reads)});
    t.add_row({"uncorrectable refetches", std::to_string(f.refetches)});
    t.add_row({"data-loss events", std::to_string(f.data_loss_events)});
    t.add_row({"disabled lines", std::to_string(out.raw.disabled_slots)});
  }
  std::printf("%s", t.to_string().c_str());
}

/// Runs sweep mode end to end; returns the process exit code (0 = all
/// workloads completed, 3 = at least one workload errored, 5 = interrupted
/// by SIGINT/SIGTERM after a graceful drain).
int run_sweep_mode(const SystemConfig& cfg, const std::string& sweep_arg,
                   const std::string& techniques_arg, const std::string& csv_path,
                   instr_t instr, instr_t warmup, std::uint64_t seed,
                   unsigned jobs, const std::string& journal_path,
                   const std::string& resume_path) {
  sim::SweepSpec spec =
      tools::build_sweep_spec(cfg, sweep_arg, techniques_arg, instr, warmup, seed, jobs);
  if (spec.workloads.empty()) usage("empty sweep workload list");

  sim::ResumeLoad resume;
  if (!resume_path.empty()) {
    resume = sim::load_resume_state(resume_path, spec);
    if (!resume.ok) {
      std::fprintf(stderr, "error: %s\n", resume.error.c_str());
      return 2;
    }
    spec.resume = &resume.state;
    std::printf("resume: %zu row(s) restored from %s", resume.state.rows.size(),
                resume_path.c_str());
    if (resume.state.corrupt_lines > 0) {
      std::printf(" (%zu damaged line(s) skipped)", resume.state.corrupt_lines);
    }
    std::printf("\n");
  }

  // A resumed sweep keeps journaling to the file it resumed from unless an
  // explicit --journal overrides it.
  sim::SweepJournal journal;
  const std::string effective_journal =
      !journal_path.empty() ? journal_path : resume_path;
  if (!effective_journal.empty()) {
    if (!journal.open(effective_journal, spec)) {
      std::fprintf(stderr, "error: %s\n", journal.last_error().c_str());
      return 2;
    }
    spec.journal = &journal;
  }

  // From here on SIGINT/SIGTERM drain the sweep instead of killing it.
  resilience::install_signal_handlers();

  std::printf("sweep: %zu workload(s) x %zu technique(s) + baseline, %u worker thread(s)\n",
              spec.workloads.size(), spec.techniques.size(),
              sim::TaskPool::resolve_threads(jobs));
  const sim::RunCacheStats memo_before = sim::RunCache::instance().stats();
  const sim::SweepResult result = sim::run_sweep(spec);
  const sim::RunCacheStats memo_after = sim::RunCache::instance().stats();
  journal.close();
  std::printf("%s", sim::figure_report(result, "sweep").c_str());
  // Parallelism header: the resolved worker count together with what the
  // memo cache actually absorbed during this sweep. Memo-file damage only
  // appends when it happened, keeping the common line stable.
  std::printf("parallelism: %u worker thread(s), memo-cache %llu hit / %llu miss "
              "(%llu disk hit)",
              sim::TaskPool::resolve_threads(jobs),
              static_cast<unsigned long long>(memo_after.hits - memo_before.hits),
              static_cast<unsigned long long>(memo_after.misses - memo_before.misses),
              static_cast<unsigned long long>(memo_after.disk_hits -
                                              memo_before.disk_hits));
  if (memo_after.quarantined > memo_before.quarantined) {
    std::printf(", %llu quarantined",
                static_cast<unsigned long long>(memo_after.quarantined -
                                                memo_before.quarantined));
  }
  std::printf("\n");
  const std::string phases = telemetry::profiler().to_line();
  if (!phases.empty()) std::printf("phases: %s\n", phases.c_str());
  if (!csv_path.empty()) {
    sim::write_csv(result, csv_path);
    std::printf("csv written to %s\n", csv_path.c_str());
  }

  if (!result.errors.empty()) {
    std::fprintf(stderr, "\nsweep errors (%zu of %zu workloads failed):\n",
                 result.errors.size(), spec.workloads.size());
    for (const sim::RunError& e : result.errors) {
      if (e.phase == "run") {
        std::fprintf(stderr, "  workload %-16s technique %-14s %s\n",
                     e.workload.c_str(), e.technique.c_str(), e.what.c_str());
      } else {
        std::fprintf(stderr, "  workload %-16s technique %-14s [%s] %s\n",
                     e.workload.c_str(), e.technique.c_str(), e.phase.c_str(),
                     e.what.c_str());
      }
    }
  }
  if (result.circuit_broken) {
    std::size_t skipped = 0;
    for (const sim::WorkloadRow& row : result.rows) skipped += row.skipped ? 1 : 0;
    std::fprintf(stderr,
                 "circuit breaker tripped after %u consecutive errors: "
                 "%zu workload(s) skipped%s\n",
                 spec.config.resilience.max_consecutive_errors, skipped,
                 effective_journal.empty()
                     ? ""
                     : ("; fix the config and resume with --resume " +
                        effective_journal)
                           .c_str());
  }
  if (result.interrupted) {
    // Partial summary above is already on stdout; the dedicated exit code
    // lets wrappers distinguish "interrupted, resumable" from failure.
    std::fprintf(stderr, "sweep interrupted: completed rows journaled%s\n",
                 effective_journal.empty()
                     ? " in memory only (use --journal to persist)"
                     : ("; resume with --resume " + effective_journal).c_str());
    return resilience::kExitInterrupted;
  }
  return result.errors.empty() ? 0 : 3;
}

/// Writes pending telemetry artefacts (interval series were written per run;
/// this adds the Chrome trace and counters.json) and reports their paths.
void flush_telemetry() {
  auto& tel = telemetry::Telemetry::instance();
  if (!tel.active()) return;
  for (const std::string& p : tel.drain_written()) {
    std::printf("interval stats written to %s\n", p.c_str());
  }
  const auto fr = tel.flush();
  if (!fr.trace_path.empty()) {
    std::printf("trace written to %s (%zu events)\n", fr.trace_path.c_str(),
                fr.trace_events);
  }
  if (!fr.counters_path.empty()) {
    std::printf("counters written to %s\n", fr.counters_path.c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  chaos::install_from_env();
  std::string workload = "h264ref";
  std::string technique = "esteem";
  std::string sweep_arg;
  std::string serve_dir;
  bool sweep_mode = false;
  std::string techniques_arg;
  std::string csv_path;
  std::string config_path;
  std::string journal_path;
  std::string resume_path;
  std::string timeline_path;
  std::string telemetry_dir;
  std::string trace_path;
  bool interval_stats = false;
  instr_t instr = 4'000'000;
  instr_t warmup = 800'000;
  std::uint64_t seed = 42;
  unsigned jobs = 0;
  bool compare = false;
  bool dump_config = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) usage(("missing value for " + arg).c_str());
      return argv[++i];
    };
    if (arg == "--workload") workload = value();
    else if (arg == "--technique") technique = value();
    else if (arg == "--sweep") { sweep_mode = true; sweep_arg = value(); }
    else if (arg == "--serve") serve_dir = value();
    else if (arg == "--techniques") techniques_arg = value();
    else if (arg == "--csv") csv_path = value();
    else if (arg == "--config") config_path = value();
    else if (arg == "--journal") journal_path = value();
    else if (arg == "--resume") resume_path = value();
    else if (arg == "--instr") instr = std::strtoull(value().c_str(), nullptr, 10);
    else if (arg == "--warmup") warmup = std::strtoull(value().c_str(), nullptr, 10);
    else if (arg == "--seed") seed = std::strtoull(value().c_str(), nullptr, 10);
    else if (arg == "--jobs")
      jobs = static_cast<unsigned>(std::strtoul(value().c_str(), nullptr, 10));
    else if (arg == "--compare") compare = true;
    else if (arg == "--timeline") timeline_path = value();
    else if (arg == "--telemetry-dir") telemetry_dir = value();
    else if (arg == "--trace") trace_path = value();
    else if (arg == "--interval-stats") interval_stats = true;
    else if (arg == "--dump-config") dump_config = true;
    else if (arg == "--dump-config-doc") {
      // The reference documents the schema itself, so it is generated from
      // the canonical defaults regardless of --config.
      std::printf("%s", config_doc_markdown(SystemConfig::single_core()).c_str());
      return 0;
    }
    else if (arg == "--list-workloads") {
      for (const auto& p : trace::all_profiles()) {
        std::printf("%-12s %s\n", std::string(p.name).c_str(),
                    std::string(p.acronym).c_str());
      }
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      usage();
    } else {
      usage(("unknown option " + arg).c_str());
    }
  }

  try {
    {
      telemetry::TelemetryConfig tc;
      tc.interval_stats = interval_stats;
      tc.dir = telemetry_dir;
      tc.trace_path = trace_path;
      if (tc.any()) telemetry::Telemetry::instance().configure(tc);
    }

    SystemConfig cfg =
        config_path.empty() ? SystemConfig::single_core() : load_config_file(config_path);

    if (sweep_mode) {
      const std::vector<std::string> sweep_items = split_csv(sweep_arg);
      if (sweep_items.empty()) usage("empty sweep workload list");
      if (config_path.empty()) {
        // Paper defaults for the core count of the first sweep workload;
        // a mismatched workload later fails as a recorded sweep error.
        cfg = tools::default_sweep_config(parse_sweep_workload(sweep_items.front()), instr);
      }
      if (dump_config) {
        save_config(cfg, std::cout);
        return 0;
      }
      if (!serve_dir.empty()) {
        // Sweep-as-a-service: plan the rows, let esteem_workerd processes
        // resolve them, aggregate — never simulate in this process. The
        // stderr progress heartbeat is the shared fleet line of
        // service::progress_line (the same view `esteem_workerd --status
        // --json` serializes), so the two surfaces cannot skew.
        if (!journal_path.empty() || !resume_path.empty()) {
          usage("--serve uses DIR/service.journal; drop --journal/--resume");
        }
        const sim::SweepSpec spec = tools::build_sweep_spec(cfg, sweep_arg, techniques_arg,
                                                            instr, warmup, seed, jobs);
        std::string plan_error;
        if (!service::plan_service(serve_dir, spec, plan_error)) {
          std::fprintf(stderr, "error: %s\n", plan_error.c_str());
          return 2;
        }
        resilience::install_signal_handlers();
        std::printf("serving %zu row(s) from %s; run: esteem_workerd --worker %s\n",
                    spec.workloads.size() * spec.techniques.size(), serve_dir.c_str(),
                    serve_dir.c_str());
        service::CoordinatorOptions copts;
        copts.dir = serve_dir;
        copts.csv_path = csv_path;
        const service::CollectResult collected = service::wait_and_collect(copts);
        const int code = service::report_collect(collected, copts);
        flush_telemetry();
        return code;
      }
      const int code = run_sweep_mode(cfg, sweep_arg, techniques_arg, csv_path, instr,
                                      warmup, seed, jobs, journal_path, resume_path);
      flush_telemetry();
      return code;
    }
    if (!journal_path.empty() || !resume_path.empty() || !serve_dir.empty()) {
      usage("--journal/--resume/--serve require --sweep");
    }

    const std::vector<std::string> benchmarks = split_csv(workload);
    if (benchmarks.empty()) usage("empty workload list");
    if (config_path.empty()) {
      // No explicit config: adopt the paper defaults for the requested core
      // count and scale the 10M-cycle interval to the shortened run (the
      // same policy the bench harness uses; see DESIGN.md §5).
      cfg = benchmarks.size() >= 2 ? SystemConfig::dual_core()
                                   : SystemConfig::single_core();
      cfg.ncores = static_cast<std::uint32_t>(benchmarks.size());
      cfg.esteem.interval_cycles = std::max<cycle_t>(
          cfg.retention_cycles(),
          static_cast<cycle_t>(10e6 * 4.0 * static_cast<double>(instr) / 400e6));
      cfg.esteem.hysteresis_intervals = 2;
      cfg.esteem.shrink_confirm_intervals = 2;
    }
    if (benchmarks.size() != cfg.ncores) {
      usage("workload count must match the configured core count");
    }

    if (dump_config) {
      save_config(cfg, std::cout);
      return 0;
    }

    sim::RunSpec spec;
    spec.config = cfg;
    spec.technique = sim::parse_technique(technique);
    spec.workload = {workload, benchmarks};
    spec.instr_per_core = instr;
    spec.warmup_instr_per_core = warmup;
    spec.seed = seed;
    spec.record_timeline = !timeline_path.empty();

    std::printf("workload %s | technique %s | %llu instr/core (+%llu warm-up)\n\n",
                workload.c_str(), technique.c_str(),
                static_cast<unsigned long long>(instr),
                static_cast<unsigned long long>(warmup));

    const sim::RunOutcome out = sim::run_experiment(spec);
    print_run(out, cfg.faults.enabled);

    if (!timeline_path.empty()) {
      CsvWriter csv(timeline_path);
      std::vector<std::string> header{"cycle", "active_ratio"};
      for (std::uint32_t m = 0; m < cfg.esteem.modules; ++m) {
        header.push_back("module" + std::to_string(m));
      }
      csv.write_row(header);
      for (const auto& s : out.raw.timeline) {
        std::vector<std::string> row{std::to_string(s.cycle), fmt(s.active_ratio, 4)};
        for (std::uint32_t w : s.module_ways) row.push_back(std::to_string(w));
        csv.write_row(row);
      }
      std::printf("\ntimeline written to %s (%zu intervals)\n", timeline_path.c_str(),
                  out.raw.timeline.size());
    }

    if (compare && spec.technique != sim::Technique::BaselinePeriodicAll) {
      sim::RunSpec base_spec = spec;
      base_spec.technique = sim::Technique::BaselinePeriodicAll;
      base_spec.record_timeline = false;
      const sim::RunOutcome base = sim::run_experiment(base_spec);
      const sim::TechniqueComparison c =
          sim::compare(workload, spec.technique, base, out);
      std::printf("\nvs. baseline (periodic refresh-all):\n");
      std::printf("  energy saving    : %7.2f %%\n", c.energy_saving_pct);
      std::printf("  weighted speedup : %7.3fx\n", c.weighted_speedup);
      std::printf("  fair speedup     : %7.3fx\n", c.fair_speedup);
      std::printf("  RPKI             : %8.1f -> %8.1f\n", c.rpki_base, c.rpki_tech);
      std::printf("  MPKI             : %8.3f -> %8.3f\n", c.mpki_base, c.mpki_tech);
    }
    flush_telemetry();
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}

// esteem_bench — wall-clock harness for the sweep layer.
//
// Runs the paper's workload sweep end to end and reports throughput as a
// single JSON line, so perf trajectories can be tracked across commits:
//
//   esteem_bench [options]
//     --workloads single|dual|N  workload list: all 34 single-core pairs,
//                                the 17 dual-core pairs, or the first N
//                                single-core workloads (default: 8)
//     --techniques A[,B]         techniques vs. baseline (default: esteem,rpv)
//     --instr N                  measured instructions per core (default 2M)
//     --warmup N                 warm-up instructions per core (default instr/5)
//     --jobs N                   worker threads (0 = hardware concurrency)
//     --repeat K                 run the sweep K times (default 2). The
//                                first repeat is cold; later repeats are
//                                served by the RunOutcome memo cache, so the
//                                gap between repeat 0 and repeat 1 measures
//                                memoization, not simulation.
//     --json FILE                also write the JSON line to FILE
//     --sampling-speedup         instead of the repeat loop, run the sweep
//                                twice cold — exhaustive, then SMARTS-sampled
//                                (docs/SAMPLING.md) — and report the
//                                wall-clock speedup. Meant for the paper
//                                scale (--instr 400000000), where sampling
//                                must deliver >= 10x.
//
// The JSON reports, per repeat: wall seconds, simulated Minstr/s (total
// simulated instructions including warm-up across every run of the sweep,
// divided by wall time), and the memo-cache hit/miss counters observed for
// that repeat. A trailing "phases" array carries the self-profiling rollup
// (telemetry::PhaseProfiler): bench.configure, sweep, run.simulate,
// run.energy, ... with accumulated seconds and instance counts.
//
// Memo-cache state and counters are process-global; the bench scopes both to
// this invocation (cache cleared, counters zeroed at entry), so repeated
// benches in one process each report a genuinely cold repeat 0 and correct
// hit rates.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include "sim/run_cache.hpp"
#include "sim/runner.hpp"
#include "sim/task_pool.hpp"
#include "telemetry/telemetry.hpp"
#include "trace/workloads.hpp"

namespace {

using namespace esteem;

[[noreturn]] void usage(const char* err = nullptr) {
  if (err) std::fprintf(stderr, "esteem_bench: %s\n", err);
  std::fprintf(stderr,
               "usage: esteem_bench [--workloads single|dual|N]\n"
               "                    [--techniques A[,B]] [--instr N]\n"
               "                    [--warmup N] [--jobs N] [--repeat K]\n"
               "                    [--json FILE] [--sampling-speedup]\n");
  std::exit(err ? 2 : 0);
}

std::vector<std::string> split_csv(const std::string& arg) {
  std::vector<std::string> out;
  std::istringstream is(arg);
  std::string item;
  while (std::getline(is, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

struct RepeatSample {
  double wall_seconds = 0.0;
  double minstr_per_s = 0.0;
  std::uint64_t memo_hits = 0;
  std::uint64_t memo_misses = 0;
};

}  // namespace

int main(int argc, char** argv) {
  std::string workloads_arg = "8";
  std::string techniques_arg = "esteem,rpv";
  std::string json_path;
  instr_t instr = 2'000'000;
  instr_t warmup = 0;  // 0 = instr / 5
  unsigned jobs = 0;
  unsigned repeat = 2;
  bool sampling_speedup = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) usage(("missing value for " + arg).c_str());
      return argv[++i];
    };
    if (arg == "--workloads") workloads_arg = value();
    else if (arg == "--techniques") techniques_arg = value();
    else if (arg == "--instr") instr = std::strtoull(value().c_str(), nullptr, 10);
    else if (arg == "--warmup") warmup = std::strtoull(value().c_str(), nullptr, 10);
    else if (arg == "--jobs")
      jobs = static_cast<unsigned>(std::strtoul(value().c_str(), nullptr, 10));
    else if (arg == "--repeat")
      repeat = static_cast<unsigned>(std::strtoul(value().c_str(), nullptr, 10));
    else if (arg == "--json") json_path = value();
    else if (arg == "--sampling-speedup") sampling_speedup = true;
    else if (arg == "--help" || arg == "-h") usage();
    else usage(("unknown option " + arg).c_str());
  }
  if (repeat == 0) usage("--repeat must be >= 1");
  if (warmup == 0) warmup = instr / 5;

  // Scope the process-global memo cache and self-profiler to this
  // invocation: entries or counters inherited from earlier work in the same
  // process would make repeat 0 falsely warm and the hit rates wrong.
  sim::RunCache::instance().clear();
  telemetry::profiler().reset();
  telemetry::ScopedTimer configure_timer(telemetry::profiler(), "bench.configure");

  sim::SweepSpec spec;
  if (workloads_arg == "single") {
    spec.workloads = trace::single_core_workloads();
    spec.config = SystemConfig::single_core();
  } else if (workloads_arg == "dual") {
    spec.workloads = trace::dual_core_workloads();
    spec.config = SystemConfig::dual_core();
  } else {
    const auto n = static_cast<std::size_t>(
        std::strtoull(workloads_arg.c_str(), nullptr, 10));
    if (n == 0) usage("--workloads must be single, dual, or a positive count");
    auto all = trace::single_core_workloads();
    all.resize(std::min(n, all.size()));
    spec.workloads = std::move(all);
    spec.config = SystemConfig::single_core();
  }
  spec.techniques.clear();
  for (const std::string& name : split_csv(techniques_arg)) {
    spec.techniques.push_back(sim::parse_technique(name));
  }
  if (spec.techniques.empty()) usage("empty technique list");
  spec.instr_per_core = instr;
  spec.warmup_instr_per_core = warmup;
  spec.threads = jobs;
  // Same interval scaling rule as the CLI's default sweep configuration.
  spec.config.esteem.interval_cycles = std::max<cycle_t>(
      spec.config.retention_cycles(),
      static_cast<cycle_t>(10e6 * 4.0 * static_cast<double>(instr) / 400e6));
  spec.config.esteem.hysteresis_intervals = 2;
  spec.config.esteem.shrink_confirm_intervals = 2;

  const unsigned threads = sim::TaskPool::resolve_threads(jobs);
  const std::size_t runs_per_sweep =
      spec.workloads.size() * (1 + spec.techniques.size());
  const double instr_per_sweep =
      static_cast<double>(runs_per_sweep) * spec.config.ncores *
      static_cast<double>(instr + warmup);

  std::fprintf(stderr,
               "esteem_bench: %zu workload(s) x %zu technique(s) + baseline, "
               "%llu instr/core (+%llu warm-up), %u worker thread(s), %u repeat(s)\n",
               spec.workloads.size(), spec.techniques.size(),
               static_cast<unsigned long long>(instr),
               static_cast<unsigned long long>(warmup), threads, repeat);

  configure_timer.stop();

  if (sampling_speedup) {
    // Two cold sweeps over the same spec: exhaustive, then SMARTS-sampled
    // with the default (paper-tier) sampling parameters. The memo cache is
    // cleared between them so both legs measure simulation, not memoization.
    if (instr / spec.config.sampling.period_instr < 2) {
      usage("--sampling-speedup needs --instr of at least two sampling "
            "periods (8000000)");
    }
    auto timed_sweep = [&](const sim::SweepSpec& s, const char* what) {
      sim::RunCache::instance().clear();
      const auto t0 = std::chrono::steady_clock::now();
      const sim::SweepResult result = sim::run_sweep(s);
      const auto t1 = std::chrono::steady_clock::now();
      if (!result.ok()) {
        for (const sim::RunError& e : result.errors) {
          std::fprintf(stderr, "esteem_bench: %s workload %s (%s) failed: %s\n",
                       what, e.workload.c_str(), e.technique.c_str(),
                       e.what.c_str());
        }
        std::exit(3);
      }
      const double wall = std::chrono::duration<double>(t1 - t0).count();
      std::fprintf(stderr, "  %s: %.3f s wall (%.2f simulated Minstr/s)\n",
                   what, wall, instr_per_sweep / 1e6 / std::max(wall, 1e-9));
      return wall;
    };
    const double exhaustive_s = timed_sweep(spec, "exhaustive");
    sim::SweepSpec sampled = spec;
    sampled.config.sampling.enabled = true;
    const double sampled_s = timed_sweep(sampled, "sampled");
    const double speedup = exhaustive_s / std::max(sampled_s, 1e-9);
    std::fprintf(stderr, "  sampled-vs-exhaustive speedup: %.2fx\n", speedup);

    std::ostringstream json;
    char buf[64];
    json << "{\"mode\":\"sampling_speedup\",\"workloads\":" << spec.workloads.size()
         << ",\"instr_per_core\":" << instr << ",\"warmup_per_core\":" << warmup
         << ",\"threads\":" << threads;
    std::snprintf(buf, sizeof buf, "%.6f", exhaustive_s);
    json << ",\"exhaustive_wall_seconds\":" << buf;
    std::snprintf(buf, sizeof buf, "%.6f", sampled_s);
    json << ",\"sampled_wall_seconds\":" << buf;
    std::snprintf(buf, sizeof buf, "%.3f", speedup);
    json << ",\"speedup\":" << buf << '}';
    std::printf("%s\n", json.str().c_str());
    if (!json_path.empty()) {
      std::FILE* f = std::fopen(json_path.c_str(), "w");
      if (!f) {
        std::fprintf(stderr, "esteem_bench: cannot write %s\n", json_path.c_str());
        return 2;
      }
      std::fprintf(f, "%s\n", json.str().c_str());
      std::fclose(f);
    }
    return 0;
  }

  std::vector<RepeatSample> samples;
  for (unsigned r = 0; r < repeat; ++r) {
    const sim::RunCacheStats before = sim::RunCache::instance().stats();
    const auto t0 = std::chrono::steady_clock::now();
    const sim::SweepResult result = sim::run_sweep(spec);
    const auto t1 = std::chrono::steady_clock::now();
    if (!result.ok()) {
      for (const sim::RunError& e : result.errors) {
        std::fprintf(stderr, "esteem_bench: workload %s (%s) failed: %s\n",
                     e.workload.c_str(), e.technique.c_str(), e.what.c_str());
      }
      return 3;
    }
    const sim::RunCacheStats after = sim::RunCache::instance().stats();
    RepeatSample s;
    s.wall_seconds = std::chrono::duration<double>(t1 - t0).count();
    s.minstr_per_s = instr_per_sweep / 1e6 / std::max(s.wall_seconds, 1e-9);
    s.memo_hits = after.hits - before.hits;
    s.memo_misses = after.misses - before.misses;
    samples.push_back(s);
    std::fprintf(stderr,
                 "  repeat %u: %.3f s wall, %.2f simulated Minstr/s, "
                 "memo %llu hit / %llu miss\n",
                 r, s.wall_seconds, s.minstr_per_s,
                 static_cast<unsigned long long>(s.memo_hits),
                 static_cast<unsigned long long>(s.memo_misses));
  }

  std::ostringstream json;
  json << "{\"workloads\":" << spec.workloads.size() << ",\"techniques\":[";
  for (std::size_t t = 0; t < spec.techniques.size(); ++t) {
    json << (t ? "," : "") << '"' << to_string(spec.techniques[t]) << '"';
  }
  json << "],\"instr_per_core\":" << instr << ",\"warmup_per_core\":" << warmup
       << ",\"threads\":" << threads << ",\"runs_per_sweep\":" << runs_per_sweep;
  char buf[64];
  json << ",\"repeats\":[";
  for (std::size_t r = 0; r < samples.size(); ++r) {
    const RepeatSample& s = samples[r];
    std::snprintf(buf, sizeof buf, "%.6f", s.wall_seconds);
    json << (r ? "," : "") << "{\"wall_seconds\":" << buf;
    std::snprintf(buf, sizeof buf, "%.3f", s.minstr_per_s);
    json << ",\"simulated_minstr_per_s\":" << buf << ",\"memo_hits\":" << s.memo_hits
         << ",\"memo_misses\":" << s.memo_misses << '}';
  }
  json << "],\"phases\":" << telemetry::profiler().to_json() << '}';

  std::printf("%s\n", json.str().c_str());
  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (!f) {
      std::fprintf(stderr, "esteem_bench: cannot write %s\n", json_path.c_str());
      return 2;
    }
    std::fprintf(f, "%s\n", json.str().c_str());
    std::fclose(f);
  }
  return 0;
}

// Systematic crashpoint/fault exploration for the durable-I/O stack
// (DESIGN.md §15): enumerates one-fault schedules for every registered
// injection point (plus seeded random multi-fault plans), runs each through
// a forked scenario process, then re-runs recovery in a clean process and
// checks the pinned invariants:
//
//   - a resumed sweep's CSV is byte-identical to an uninterrupted run,
//   - no (workload x technique) row is lost or duplicated,
//   - the lease-table replay is conflict-free and fully resolved,
//   - damaged journal lines are counted, never fatal,
//   - and every one-fault schedule actually reached its point (a schedule
//     that never fires is vacuous coverage, reported as a failure).
//
// Every leg is replayable: a failing schedule prints the exact
// `esteem_chaos --replay "<schedule>" --mode <m>` (or --random-replay SEED)
// command that reproduces it deterministically.
//
// Scenarios by point domain: sweep.* / memo.* run a journaled CLI-style
// sweep; lease.* / sidecar.* run the multi-process service path in BOTH
// lock modes ([service] lock_mode=append and =lockfile); lock.* points only
// exist in lockfile mode. The service CSV is compared against the sweep
// reference CSV on purpose — the coordinator documents byte-equality with
// run_sweep, so chaos exploration re-checks that contract too.
#include <fcntl.h>
#include <sys/wait.h>
#include <unistd.h>

#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "chaos/fault_plan.hpp"
#include "service/coordinator.hpp"
#include "service/lease_table.hpp"
#include "service/worker.hpp"
#include "sim/report.hpp"
#include "sim/run_cache.hpp"
#include "sim/runner.hpp"
#include "sim/sweep_journal.hpp"

namespace {

using namespace esteem;
namespace fs = std::filesystem;

[[noreturn]] void usage(const char* problem = nullptr) {
  if (problem != nullptr) std::fprintf(stderr, "error: %s\n", problem);
  std::fprintf(stderr,
               "usage: esteem_chaos --list-points\n"
               "       esteem_chaos --explore [--random N] [--rate PCT] "
               "[--root DIR] [--keep]\n"
               "       esteem_chaos --replay SCHEDULE [--mode append|lockfile] "
               "[--root DIR] [--keep]\n"
               "       esteem_chaos --random-replay SEED [--rate PCT] "
               "[--root DIR] [--keep]\n"
               "\n"
               "Schedules: point@hit=action;...  actions: enospc eio "
               "short:<bytes> fail dup crash\n");
  std::exit(2);
}

// ---------------------------------------------------------------------------
// The shared scenario spec: tiny enough that a full leg is sub-second, big
// enough that every seam point is on the path (journal rows, memo stores,
// leases, heartbeats, sidecar snapshots).

SystemConfig tiny_config() {
  SystemConfig cfg = SystemConfig::single_core();
  cfg.l1.geom = CacheGeometry{8ULL * 1024, 4, 64};
  cfg.l2.geom = CacheGeometry{512ULL * 1024, 8, 64};
  cfg.edram.retention_us = 5.0;
  cfg.esteem.modules = 8;
  cfg.esteem.interval_cycles = 100'000;
  cfg.esteem.sampling_ratio = 32;
  cfg.esteem.a_min = 2;
  // Tight service timings so a crashed worker's lease expires (and a stale
  // lock file ages out) within one leg instead of the production 30 s.
  cfg.service.lease_ttl_ms = 400;
  cfg.service.heartbeat_ms = 100;
  cfg.service.poll_ms = 25;
  // Arm the observer sidecars so sidecar.* points are on the path.
  cfg.observability.flush_ms = 10;
  return cfg;
}

sim::SweepSpec base_spec(const std::string& lock_mode) {
  sim::SweepSpec spec;
  spec.config = tiny_config();
  spec.config.service.lock_mode = lock_mode;
  for (const char* w : {"gamess", "gobmk"}) {
    spec.workloads.push_back(trace::Workload{w, {w}});
  }
  spec.techniques = {sim::Technique::Esteem, sim::Technique::RefrintRPV};
  spec.instr_per_core = 100'000;
  spec.warmup_instr_per_core = 20'000;
  spec.threads = 1;
  return spec;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

// ---------------------------------------------------------------------------
// Scenario legs. Each runs inside a forked child (never in the parent: the
// chaos leg may SIGKILL itself, and both legs spawn sim threads). Children
// exit through _exit so the parent's stdio/atexit state is never touched.

constexpr unsigned kLegTimeoutSec = 120;

/// Sweep chaos leg: journaled sweep with faults armed. Failures here are
/// expected and fine — recovery is what gets judged.
void sweep_chaos_leg(const std::string& dir, const std::string& memo_dir) {
  sim::RunCache::instance().set_disk_dir(memo_dir);
  sim::SweepSpec spec = base_spec("append");
  sim::SweepJournal journal;
  if (journal.open((fs::path(dir) / "sweep.journal").string(), spec)) {
    spec.journal = &journal;
    sim::run_sweep(spec);
    journal.close();
  }
}

/// Sweep recovery leg: no faults; resume from whatever the chaos leg left
/// behind and demand a complete, journaled result. Exit codes name the
/// broken invariant for the parent's failure message.
int sweep_recover_leg(const std::string& dir, const std::string& memo_dir,
                      const std::string& csv_out) {
  sim::RunCache::instance().set_disk_dir(memo_dir);
  sim::SweepSpec spec = base_spec("append");
  const std::string journal_path = (fs::path(dir) / "sweep.journal").string();

  sim::ResumeLoad resume;
  if (fs::exists(journal_path)) {
    resume = sim::load_resume_state(journal_path, spec);
    // A journal with no intact header (chaos died before the first append)
    // is not resumable; starting fresh over the same file must still work.
    if (!resume.ok) {
      std::fprintf(stderr, "resume unavailable (%s); running full sweep\n",
                   resume.error.c_str());
    }
  }
  sim::SweepJournal journal;
  if (!journal.open(journal_path, spec)) {
    std::fprintf(stderr, "cannot reopen journal: %s\n", journal_path.c_str());
    return 2;
  }
  if (resume.ok) spec.resume = &resume.state;
  spec.journal = &journal;
  const sim::SweepResult result = sim::run_sweep(spec);
  journal.close();

  if (!result.ok()) {
    for (const sim::RunError& e : result.errors) {
      std::fprintf(stderr, "run error: %s/%s: %s\n", e.workload.c_str(),
                   e.technique.c_str(), e.what.c_str());
    }
    return 3;
  }
  if (result.rows.size() != spec.workloads.size()) return 4;
  for (const sim::WorkloadRow& row : result.rows) {
    if (!row.completed || row.comparisons.size() != spec.techniques.size()) {
      return 4;  // lost or incomplete (workload x technique) row
    }
  }
  sim::write_csv(result, csv_out);
  return 0;
}

/// Service chaos leg: plan + one worker with faults armed.
void service_chaos_leg(const std::string& dir, const std::string& lock_mode) {
  const std::string svc = (fs::path(dir) / "svc").string();
  std::string error;
  if (!service::plan_service(svc, base_spec(lock_mode), error)) return;
  service::WorkerOptions opts;
  opts.dir = svc;
  opts.quiet = true;
  service::run_worker(opts);
}

/// Service recovery leg: re-plan (idempotent; repairs a torn/missing
/// header), run a clean worker to resolution, then check the lease-table
/// replay and collect the CSV.
int service_recover_leg(const std::string& dir, const std::string& lock_mode,
                        const std::string& csv_out) {
  const std::string svc = (fs::path(dir) / "svc").string();
  std::string error;
  if (!service::plan_service(svc, base_spec(lock_mode), error)) {
    std::fprintf(stderr, "re-plan failed: %s\n", error.c_str());
    return 2;
  }
  service::WorkerOptions opts;
  opts.dir = svc;
  opts.quiet = true;
  const service::WorkerReport report = service::run_worker(opts);
  if (!report.ok()) {
    std::fprintf(stderr, "recovery worker failed: %s\n", report.error.c_str());
    return 3;
  }

  service::LeaseTable table;
  if (!table.open(svc, "chaos-check")) {
    std::fprintf(stderr, "table open failed: %s\n", table.last_error().c_str());
    return 2;
  }
  const service::TableState state = table.load_state();
  if (!state.ok) {
    std::fprintf(stderr, "load_state failed: %s\n", state.error.c_str());
    return 4;
  }
  if (state.conflict) {
    std::fprintf(stderr, "lease replay CONFLICT (differing cell digests)\n");
    return 4;
  }
  if (state.completed != table.n_rows() || state.failed != 0) {
    std::fprintf(stderr, "rows not fully resolved: %zu/%zu done, %zu failed\n",
                 state.completed, table.n_rows(), state.failed);
    return 4;
  }
  std::fprintf(stderr, "replay ok: %zu rows, %zu damaged line(s) skipped\n",
               state.completed, state.damaged_lines);

  service::CoordinatorOptions copts;
  copts.dir = svc;
  copts.csv_path = csv_out;
  copts.timeout_ms = 60'000;
  copts.quiet = true;
  const service::CollectResult collected = service::wait_and_collect(copts);
  if (!collected.ok) {
    std::fprintf(stderr, "collect failed: %s\n", collected.error.c_str());
    return 5;
  }
  return 0;
}

// ---------------------------------------------------------------------------
// Fork plumbing.

struct ChildResult {
  bool exited = false;   ///< Normal exit (code below).
  int exit_code = 0;
  bool killed = false;   ///< Died by SIGKILL (a crashpoint fired).
  int signal = 0;        ///< Terminating signal when not exited.
};

/// Runs `body` in a forked child with stdout/stderr redirected to
/// `log_path` and a wall-clock alarm (a hung leg dies by SIGALRM instead of
/// wedging the explorer). Returns how the child ended.
template <typename Body>
ChildResult run_child(const std::string& log_path, Body body) {
  std::fflush(nullptr);
  const pid_t pid = ::fork();
  if (pid < 0) {
    std::fprintf(stderr, "fatal: fork failed: %s\n", std::strerror(errno));
    std::exit(2);
  }
  if (pid == 0) {
    const int fd = ::open(log_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd >= 0) {
      ::dup2(fd, STDOUT_FILENO);
      ::dup2(fd, STDERR_FILENO);
      ::close(fd);
    }
    ::alarm(kLegTimeoutSec);
    int code = 0;
    try {
      code = body();
    } catch (const std::exception& e) {
      std::fprintf(stderr, "uncaught exception: %s\n", e.what());
      code = 99;
    }
    std::fflush(nullptr);
    ::_exit(code);
  }
  int status = 0;
  ::waitpid(pid, &status, 0);
  ChildResult r;
  if (WIFEXITED(status)) {
    r.exited = true;
    r.exit_code = WEXITSTATUS(status);
  } else if (WIFSIGNALED(status)) {
    r.signal = WTERMSIG(status);
    r.killed = r.signal == SIGKILL;
  }
  return r;
}

// ---------------------------------------------------------------------------
// Legs and the exploration plan.

struct Leg {
  std::string schedule;       ///< "" = random plan.
  std::uint64_t seed = 0;     ///< Random legs only.
  unsigned rate = 3;          ///< Random injection probability (percent).
  bool sweep_scenario = true;
  std::string lock_mode = "append";  ///< Service scenario only.
  bool is_crash = false;      ///< Schedule contains a crash action.
  bool require_fire = false;  ///< One-fault legs must reach their point.

  std::string label() const {
    std::string s = schedule.empty()
                        ? "random seed " + std::to_string(seed)
                        : schedule;
    s += sweep_scenario ? " [sweep]" : " [service/" + lock_mode + "]";
    return s;
  }
  std::string replay_command() const {
    if (schedule.empty()) {
      return "esteem_chaos --random-replay " + std::to_string(seed) +
             " --rate " + std::to_string(rate);
    }
    std::string cmd = "esteem_chaos --replay \"" + schedule + "\"";
    if (!sweep_scenario) cmd += " --mode " + lock_mode;
    return cmd;
  }
};

/// One-fault actions appropriate to what the point's operation does.
std::vector<std::string> actions_for(chaos::OpKind kind) {
  switch (kind) {
    case chaos::OpKind::kOpen:   return {"eio"};
    case chaos::OpKind::kWrite:  return {"enospc", "short:5"};
    case chaos::OpKind::kFsync:  return {"eio"};
    case chaos::OpKind::kRename: return {"fail", "dup"};
    case chaos::OpKind::kCrash:  return {"crash"};
  }
  return {};
}

bool point_is_sweep_scenario(const std::string& point) {
  return point.rfind("sweep.", 0) == 0 || point.rfind("memo.", 0) == 0;
}

bool point_is_lock(const std::string& point) {
  return point.rfind("lock.", 0) == 0;
}

/// The full one-fault-per-point plan plus `n_random` seeded multi-fault
/// legs (each random seed runs both scenarios).
std::vector<Leg> build_plan(unsigned n_random, unsigned rate) {
  std::vector<Leg> legs;
  for (const chaos::PointInfo& point : chaos::injection_points()) {
    for (const std::string& action : actions_for(point.kind)) {
      Leg leg;
      leg.schedule = std::string(point.name) + "@0=" + action;
      leg.is_crash = point.kind == chaos::OpKind::kCrash;
      leg.require_fire = true;
      if (point_is_sweep_scenario(point.name)) {
        legs.push_back(leg);
        continue;
      }
      leg.sweep_scenario = false;
      if (point_is_lock(point.name)) {
        leg.lock_mode = "lockfile";  // lock.* points exist only here
        legs.push_back(leg);
        continue;
      }
      // lease.* / sidecar.* faults must recover under both serializations.
      leg.lock_mode = "append";
      legs.push_back(leg);
      leg.lock_mode = "lockfile";
      legs.push_back(leg);
    }
  }
  for (unsigned i = 1; i <= n_random; ++i) {
    Leg leg;
    leg.seed = i;
    leg.rate = rate;
    leg.sweep_scenario = true;
    legs.push_back(leg);
    leg.sweep_scenario = false;
    leg.lock_mode = (i % 2 == 0) ? "lockfile" : "append";
    legs.push_back(leg);
  }
  return legs;
}

/// Installs the leg's plan inside a chaos-leg child. Exits the child on a
/// schedule that no longer parses (registry drift).
void install_leg_plan(const Leg& leg) {
  if (leg.schedule.empty()) {
    chaos::install_plan(std::make_unique<chaos::RandomFaultPlan>(
        leg.seed, leg.rate, /*max_injections=*/6));
    return;
  }
  std::string error;
  auto plan = chaos::ScheduleFaultPlan::parse(leg.schedule, error);
  if (plan == nullptr) {
    std::fprintf(stderr, "bad schedule: %s\n", error.c_str());
    ::_exit(98);
  }
  chaos::install_plan(std::move(plan));
}

/// Runs one leg end to end under `dir`. Returns the failure reason, or
/// nullopt on success. `ref_csv` holds the no-fault reference bytes.
std::optional<std::string> run_leg(const Leg& leg, const std::string& dir,
                                   const std::string& shared_memo,
                                   const std::string& ref_csv) {
  fs::create_directories(dir);
  // memo.* faults (and random plans, which may draw them) tear real memo
  // files; give those legs a private memo dir so the shared warm cache
  // stays pristine for everyone else.
  const bool private_memo =
      leg.schedule.empty() || leg.schedule.rfind("memo.", 0) == 0;
  const std::string memo_dir =
      private_memo ? (fs::path(dir) / "memo").string() : shared_memo;
  const std::string fired_path = (fs::path(dir) / "fired").string();

  // Leg 1: chaos. Allowed to fail operations, forbidden to die by anything
  // but a deliberate crashpoint SIGKILL.
  const ChildResult chaos_leg =
      run_child((fs::path(dir) / "chaos.log").string(), [&]() {
        install_leg_plan(leg);
        if (leg.sweep_scenario) {
          sweep_chaos_leg(dir, memo_dir);
        } else {
          service_chaos_leg(dir, leg.lock_mode);
        }
        std::ofstream(fired_path) << chaos::injection_count();
        return 0;
      });

  if (!chaos_leg.exited && !chaos_leg.killed) {
    return "chaos leg died by signal " + std::to_string(chaos_leg.signal) +
           " (see " + dir + "/chaos.log)";
  }
  if (chaos_leg.exited && chaos_leg.exit_code != 0) {
    return "chaos leg exited " + std::to_string(chaos_leg.exit_code) +
           " (see " + dir + "/chaos.log)";
  }
  if (leg.require_fire) {
    if (leg.is_crash) {
      if (!chaos_leg.killed) {
        return "crashpoint never fired (vacuous coverage: the scenario no "
               "longer reaches this point)";
      }
    } else {
      const std::string fired = read_file(fired_path);
      if (fired.empty() || fired == "0") {
        return "fault never injected (vacuous coverage: the scenario no "
               "longer reaches this point)";
      }
    }
  }

  // Leg 2: recovery in a clean process; this is what the invariants judge.
  const std::string csv_out = (fs::path(dir) / "out.csv").string();
  const ChildResult recover =
      run_child((fs::path(dir) / "recover.log").string(), [&]() {
        return leg.sweep_scenario
                   ? sweep_recover_leg(dir, memo_dir, csv_out)
                   : service_recover_leg(dir, leg.lock_mode, csv_out);
      });
  if (!recover.exited) {
    return "recovery leg died by signal " + std::to_string(recover.signal) +
           " (see " + dir + "/recover.log)";
  }
  if (recover.exit_code != 0) {
    static const char* const kReasons[] = {
        "", "", "journal/plan reopen failed", "recovery run errored",
        "rows lost, duplicated, conflicted or unresolved", "collect failed"};
    const char* why = recover.exit_code >= 2 && recover.exit_code <= 5
                          ? kReasons[recover.exit_code]
                          : "recovery failed";
    return std::string(why) + " (exit " + std::to_string(recover.exit_code) +
           ", see " + dir + "/recover.log)";
  }

  const std::string got = read_file(csv_out);
  if (got.empty()) return "recovery produced no CSV";
  if (got != ref_csv) {
    return "recovered CSV differs from the no-fault reference (" + csv_out +
           " vs reference.csv)";
  }
  return std::nullopt;
}

int list_points() {
  std::printf("%-28s %-7s %s\n", "POINT", "OP", "SUMMARY");
  for (const chaos::PointInfo& p : chaos::injection_points()) {
    const char* op = "?";
    switch (p.kind) {
      case chaos::OpKind::kOpen:   op = "open";   break;
      case chaos::OpKind::kWrite:  op = "write";  break;
      case chaos::OpKind::kFsync:  op = "fsync";  break;
      case chaos::OpKind::kRename: op = "rename"; break;
      case chaos::OpKind::kCrash:  op = "crash";  break;
    }
    std::printf("%-28s %-7s %s\n", p.name, op, p.summary);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string mode;
  std::string schedule;
  std::string lock_mode;
  std::string root;
  std::uint64_t seed = 0;
  unsigned n_random = 0;
  unsigned rate = 3;
  bool keep = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) usage(("missing value for " + arg).c_str());
      return argv[++i];
    };
    if (arg == "--list-points") mode = "list";
    else if (arg == "--explore") mode = "explore";
    else if (arg == "--replay") { mode = "replay"; schedule = value(); }
    else if (arg == "--random-replay") {
      mode = "random-replay";
      seed = std::strtoull(value().c_str(), nullptr, 10);
    } else if (arg == "--random") {
      n_random = static_cast<unsigned>(std::strtoul(value().c_str(), nullptr, 10));
    } else if (arg == "--rate") {
      rate = static_cast<unsigned>(std::strtoul(value().c_str(), nullptr, 10));
    } else if (arg == "--mode") {
      lock_mode = value();
      if (lock_mode != "append" && lock_mode != "lockfile") {
        usage("--mode must be append or lockfile");
      }
    } else if (arg == "--root") root = value();
    else if (arg == "--keep") keep = true;
    else if (arg == "--help" || arg == "-h") usage();
    else usage(("unknown argument " + arg).c_str());
  }
  if (mode.empty()) usage("pick one of --list-points/--explore/--replay/--random-replay");
  if (mode == "list") return list_points();

  if (root.empty()) {
    root = (fs::temp_directory_path() /
            ("esteem-chaos-" + std::to_string(::getpid()))).string();
  }
  fs::remove_all(root);
  fs::create_directories(root);

  std::vector<Leg> legs;
  if (mode == "explore") {
    legs = build_plan(n_random, rate);
  } else if (mode == "replay") {
    Leg leg;
    leg.schedule = schedule;
    leg.is_crash = schedule.find("=crash") != std::string::npos;
    leg.require_fire = true;
    const std::string first_point = schedule.substr(0, schedule.find_first_of("@="));
    leg.sweep_scenario = point_is_sweep_scenario(first_point);
    if (!leg.sweep_scenario) {
      leg.lock_mode = lock_mode.empty()
                          ? (point_is_lock(first_point) ? "lockfile" : "append")
                          : lock_mode;
    }
    legs.push_back(leg);
  } else {  // random-replay
    Leg leg;
    leg.seed = seed;
    leg.rate = rate;
    leg.sweep_scenario = true;
    legs.push_back(leg);
    leg.sweep_scenario = false;
    leg.lock_mode = (seed % 2 == 0) ? "lockfile" : "append";
    legs.push_back(leg);
  }

  // Reference leg: the no-fault sweep, whose CSV every recovery must match
  // byte for byte. Runs through the same recovery code path (and warms the
  // shared memo dir, so later legs mostly replay memoized outcomes).
  const std::string shared_memo = (fs::path(root) / "memo").string();
  const std::string ref_csv_path = (fs::path(root) / "reference.csv").string();
  {
    const std::string ref_dir = (fs::path(root) / "ref").string();
    fs::create_directories(ref_dir);
    const ChildResult ref =
        run_child((fs::path(ref_dir) / "ref.log").string(), [&]() {
          return sweep_recover_leg(ref_dir, shared_memo, ref_csv_path);
        });
    if (!ref.exited || ref.exit_code != 0) {
      std::fprintf(stderr,
                   "fatal: reference sweep failed (see %s/ref.log)\n"
                   "chaos: FAIL\n", ref_dir.c_str());
      return 1;
    }
  }
  const std::string ref_csv = read_file(ref_csv_path);

  std::size_t failures = 0;
  for (std::size_t i = 0; i < legs.size(); ++i) {
    const Leg& leg = legs[i];
    const std::string dir = (fs::path(root) / ("leg-" + std::to_string(i))).string();
    const std::optional<std::string> failure =
        run_leg(leg, dir, shared_memo, ref_csv);
    if (failure) {
      ++failures;
      std::printf("FAIL  %s\n      %s\n      replay: %s\n", leg.label().c_str(),
                  failure->c_str(), leg.replay_command().c_str());
    } else {
      std::printf("ok    %s\n", leg.label().c_str());
    }
    std::fflush(stdout);
  }

  const std::size_t scheduled = legs.size();
  if (failures == 0) {
    if (!keep) {
      std::error_code ec;
      fs::remove_all(root, ec);
    }
    std::printf("chaos: PASS (%zu legs, %u random seed(s), artifacts %s)\n",
                scheduled, n_random, keep ? root.c_str() : "removed");
    return 0;
  }
  std::printf("chaos: FAIL (%zu of %zu legs; artifacts kept in %s)\n",
              failures, scheduled, root.c_str());
  return 1;
}
